package strata

import "taskpoint/internal/obs"

// Stratified-sampling metrics in the default registry: how the budget is
// spent (pilot vs phase vs directed vs warm-up observations), how
// allocation distributes it, and the resulting interval quality — the
// telemetry an online fidelity manager would steer by.
var (
	metricSamplesPilot    = obs.Default().Counter("strata.samples.pilot")
	metricSamplesPhase    = obs.Default().Counter("strata.samples.phase")
	metricSamplesDirected = obs.Default().Counter("strata.samples.directed")
	metricSamplesWarmup   = obs.Default().Counter("strata.samples.warmup")
	metricAllocRounds     = obs.Default().Counter("strata.alloc.rounds")
	metricAllocQuota      = obs.Default().Histogram("strata.alloc.quota")
	metricCIRelWidthPct   = obs.Default().Histogram("strata.ci.rel_width_pct")
)
