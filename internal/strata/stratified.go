package strata

import (
	"fmt"
	"math"

	"taskpoint/internal/core"
	"taskpoint/internal/obs"
	"taskpoint/internal/sim"
	"taskpoint/internal/trace"
)

// Config parameterises the Stratified policy.
type Config struct {
	// Budget is B: the target number of task instances simulated in
	// detail over the whole run, counting the sampler's own warm-up and
	// sampling-phase instances as well as directed samples.
	Budget int
	// Pilot is the number of detailed samples the pilot phase collects
	// per stratum before variance-driven allocation.
	Pilot int
	// PilotCutoff ends the pilot phase after this many consecutive task
	// starts that needed no pilot sample, mirroring the sampler's
	// rare-type cut-off: strata too rare to fill their pilot must not
	// stall allocation forever.
	PilotCutoff int
	// Bands enables the concurrency-band dimension of the stratifier.
	Bands bool
	// Z is the normal critical value of the confidence interval
	// (1.96 for 95%).
	Z float64
	// StaleAfter bounds how long a stratum's own IPC estimate stays in
	// use: after this many starts of the stratum without a fresh
	// detailed sample, FastIPC abstains and fast-forwarding falls back
	// to the sampler's histories (which the remaining resampling
	// triggers keep refreshing). Micro-architectural drift makes old
	// windows misleading once the budget stops directing samples.
	StaleAfter int
	// MinRelErr floors the interval's half-width at this fraction of
	// the estimate. The statistical interval covers sampling error
	// only; detailed measurements taken mid-run (after fast-forwarded
	// stretches) additionally carry a small measurement bias from
	// stale micro-architectural state that does not shrink with more
	// samples, so a run that samples nearly everything must not report
	// a near-zero interval.
	MinRelErr float64
	// DirBiasRelErr widens the half-width floor in proportion to the
	// share of the estimate carried by directed samples or fallback
	// rates. Directed samples are measured while co-runners
	// fast-forward — the wrong contention regime, with possibly cold
	// micro-architectural state — and the stratum-matched calibration
	// bracket only sees the part of that bias strata measured in both
	// regimes reveal. The floor admits the remainder: an estimate built
	// purely from sampling-phase measurements keeps the MinRelErr
	// floor, one living entirely off directed samples gets
	// MinRelErr + DirBiasRelErr.
	DirBiasRelErr float64
}

// DefaultConfig returns the stratified configuration used throughout the
// evaluation: 3 pilot samples per stratum, pilot cut-off 64, concurrency
// bands on, 95% confidence with a 2% relative-error floor widened by up
// to 5% on directed-sample-dominated runs.
func DefaultConfig(budget int) Config {
	return Config{
		Budget: budget, Pilot: 3, PilotCutoff: 64, Bands: true,
		StaleAfter: 48, Z: 1.96, MinRelErr: 0.02, DirBiasRelErr: 0.05,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Budget < 1:
		return fmt.Errorf("strata: budget %d must be >= 1", c.Budget)
	case c.Pilot < 1:
		return fmt.Errorf("strata: pilot size %d must be >= 1", c.Pilot)
	case c.PilotCutoff < 1:
		return fmt.Errorf("strata: pilot cutoff %d must be >= 1", c.PilotCutoff)
	case c.StaleAfter < 1:
		return fmt.Errorf("strata: staleness horizon %d must be >= 1", c.StaleAfter)
	case !(c.Z > 0):
		return fmt.Errorf("strata: z-score %v must be > 0", c.Z)
	case c.MinRelErr < 0 || c.MinRelErr >= 1:
		return fmt.Errorf("strata: relative-error floor %v out of range [0, 1)", c.MinRelErr)
	case c.DirBiasRelErr < 0 || c.DirBiasRelErr >= 1:
		return fmt.Errorf("strata: directed-bias floor %v out of range [0, 1)", c.DirBiasRelErr)
	}
	return nil
}

// biSample accumulates (duration, instructions) pairs of one sample
// group, keeping the cross-moments the ratio estimator needs.
type biSample struct {
	n                               int
	sumD, sumX, sumDD, sumXX, sumDX float64
}

func (b *biSample) Add(dur, instr float64) {
	b.n++
	b.sumD += dur
	b.sumX += instr
	b.sumDD += dur * dur
	b.sumXX += instr * instr
	b.sumDX += dur * instr
}

// stratum is the per-stratum run state.
type stratum struct {
	key     Key
	started int // instances started (WantDetailed calls)
	arrived int // instances finished (exact population counter)
	// instrTotal is the stratum's exact dynamic instruction total over
	// all arrived instances — the auxiliary variable of the ratio
	// estimator.
	instrTotal float64
	// Valid (duration, instructions) measurements, split by contention
	// regime: phase samples were taken while every thread ran detailed
	// (realistic contention); dir samples during fast-forwarding
	// (co-runners generated no memory traffic). The estimator
	// calibrates dir against phase; allocation and quota targets use
	// their union.
	phase biSample
	dir   biSample
	raw   biSample      // all detailed samples incl. warm-up (fallback)
	fast  biSample      // fast-forwarded instances (fallback)
	ipc   *core.History // recent valid detailed IPCs (fast-forward estimate)

	inFlight   int // granted directed samples not yet observed
	target     int // current total detailed-sample target
	quota      int // Neyman grant beyond the pilot (reporting)
	gap        int // starts between directed grants (systematic pacing)
	sinceGrant int // starts since the last grant
	sinceDet   int // starts since the last detailed observation
}

// sampled is the stratum's valid detailed sample count (both regimes).
func (st *stratum) sampled() int { return st.phase.n + st.dir.n }

// rateMoments combines the stratum's valid sample groups with directed
// durations scaled by the contention calibration factor r, returning the
// sample count, the combined duration and instruction sums (whose
// quotient is the cycles-per-instruction rate R), and the unbiased
// variance of the ratio residuals dur−R·instr. Because R is the combined
// ratio, the residuals sum to zero and their variance is what survives
// once instruction count has explained all it can — the uncertainty that
// drives both Neyman allocation and the confidence interval.
func (st *stratum) rateMoments(r float64) (n int, sumD, sumX, se2 float64) {
	n = st.phase.n + st.dir.n
	if n == 0 {
		return 0, 0, 0, 0
	}
	sumD = st.phase.sumD + r*st.dir.sumD
	sumX = st.phase.sumX + st.dir.sumX
	if n < 2 || sumX <= 0 {
		return n, sumD, sumX, 0
	}
	rate := sumD / sumX
	sumDD := st.phase.sumDD + r*r*st.dir.sumDD
	sumXX := st.phase.sumXX + st.dir.sumXX
	sumDX := st.phase.sumDX + r*st.dir.sumDX
	resid := sumDD - 2*rate*sumDX + rate*rate*sumXX
	if resid < 0 {
		resid = 0 // floating-point cancellation
	}
	return n, sumD, sumX, resid / float64(n-1)
}

// ipcWindowSize is the depth of each stratum's IPC window (a
// core.History): recency matters because micro-architectural state
// drifts over the run, so the fast-forward estimate tracks the newest
// samples like the sampler's H-deep histories do — but per stratum. It
// matches the paper's selected depth H=4; the sensitivity scan showed
// deeper windows hurt on input-dependent types.
const ipcWindowSize = 4

// pending remembers the stratum of an in-flight instance between start and
// finish (FinishInfo does not carry the concurrency level) and whether the
// policy granted it a directed sample.
type pending struct {
	key     Key
	granted bool
}

// Stratified is the two-phase stratified sampling policy. It implements
// core.Policy and core.BudgetedPolicy: per-stratum quotas force detailed
// simulation (directed samples) while ShouldResample suppresses periodic
// resampling entirely. One value serves one run at a time; core.New
// resets it via ResetRun, so it can be reused across sequential runs.
//
// Phase one (pilot) forces the first Pilot instances of every stratum into
// detailed mode. Once every seen stratum's pilot is full — or PilotCutoff
// consecutive starts needed no pilot — the remaining budget is
// Neyman-allocated: quota_h ∝ N̂_h·σ_h with σ_h estimated from the pilot
// samples and N̂_h from the Prescan populations (apportioned over observed
// concurrency bands) or, without a prescan, from observed arrivals. Phase
// two (measure) spends the quotas as directed samples, paced evenly over
// each stratum's expected remaining instances.
type Stratified struct {
	cfg Config

	// popTC holds exact (type, size-class) populations from Prescan;
	// totalPop is their sum (0 without a prescan).
	popTC    map[tcKey]int
	totalPop int

	strata  map[Key]*stratum
	order   []Key // creation order: deterministic iteration
	pend    map[int32]pending
	started int // total instances started

	detTotal      int // detailed observations, all causes
	inFlightTotal int
	allocated     bool
	streak        int // consecutive starts without a pilot grant

	// Tracing state (trace.go): the engine attaches a recorder and the
	// cell's sampled-phase span per run; nil rec is the free disabled path.
	rec       *obs.Recorder
	parent    obs.Span
	pilotSpan obs.Span
	dirSpan   obs.Span
}

var (
	_ core.Policy         = (*Stratified)(nil)
	_ core.BudgetedPolicy = (*Stratified)(nil)
)

// New builds a Stratified policy.
func New(cfg Config) (*Stratified, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Stratified{cfg: cfg}
	s.ResetRun()
	return s, nil
}

// MustNew is New for statically valid configurations.
func MustNew(cfg Config) *Stratified {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func init() {
	core.RegisterPolicyParser("stratified", func(arg string) (core.Policy, error) {
		b, err := core.PositiveIntArg(arg, "stratified budget")
		if err != nil {
			return nil, err
		}
		return New(DefaultConfig(b))
	})
}

// Name returns "stratified(B)", the form core.ParsePolicy accepts.
func (s *Stratified) Name() string { return fmt.Sprintf("stratified(%d)", s.cfg.Budget) }

// ShouldResample never triggers: the budget directs detail per instance,
// so whole-phase resampling is suppressed (the sampler's new-type and
// parallelism triggers remain active).
func (s *Stratified) ShouldResample(_, _ int) bool { return false }

// Config returns the policy's configuration.
func (s *Stratified) Config() Config { return s.cfg }

// ResetRun clears all run state (strata, quotas, counters) while keeping
// the configuration and Prescan populations. core.New calls it, so one
// policy value can drive consecutive runs.
func (s *Stratified) ResetRun() {
	s.strata = make(map[Key]*stratum)
	s.order = s.order[:0]
	s.pend = make(map[int32]pending)
	s.started = 0
	s.detTotal = 0
	s.inFlightTotal = 0
	s.allocated = false
	s.streak = 0
	s.pilotSpan = obs.Span{}
	s.dirSpan = obs.Span{}
}

// Prescan counts the exact (type, size-class) populations of prog, giving
// the allocator true stratum sizes instead of arrival estimates. Optional;
// survives ResetRun. The evaluation runner prescans automatically.
func (s *Stratified) Prescan(prog *trace.Program) {
	s.popTC = make(map[tcKey]int)
	for i := range prog.Instances {
		inst := &prog.Instances[i]
		s.popTC[tcKey{inst.Type, core.SizeClass(inst.Instructions())}]++
	}
	s.totalPop = len(prog.Instances)
}

func (s *Stratified) stratum(k Key) *stratum {
	st, ok := s.strata[k]
	if !ok {
		st = &stratum{key: k, target: s.cfg.Pilot, ipc: core.NewHistory(ipcWindowSize)}
		s.strata[k] = st
		s.order = append(s.order, k)
	}
	return st
}

// budgetLeft is the number of detailed samples the budget still covers,
// net of everything observed or committed.
func (s *Stratified) budgetLeft() int {
	return s.cfg.Budget - s.detTotal - s.inFlightTotal
}

// WantDetailed implements core.BudgetedPolicy: it grants a directed sample
// when the instance's stratum is below its pilot or allocated target.
func (s *Stratified) WantDetailed(si sim.StartInfo) bool {
	s.tracePilotStart()
	k := s.keyOf(si)
	_, seen := s.strata[k]
	st := s.stratum(k)
	if s.allocated && !seen {
		// A stratum surfacing after allocation — a late task type or a
		// phase change shifting the type mix — would otherwise be capped
		// at its pilot while the budget sits spent on early strata.
		// Re-allocate what remains (including any unseen-population
		// reserve) over the updated stratum set.
		s.allocate()
	}
	s.started++
	st.started++
	st.sinceGrant++
	st.sinceDet++

	if s.grant(st) {
		s.pend[si.Instance.ID] = pending{key: k, granted: true}
		return true
	}
	s.streak++
	// Allocation fires when every seen stratum filled its pilot, after a
	// pilot-free streak (rare strata must not stall it), or — with a
	// prescan — once half the program has started: strata seen only
	// during the start-up concurrency ramp can never fill their pilots,
	// and a short program must not end before its budget is allocated.
	if !s.allocated && (s.streak >= s.cfg.PilotCutoff || s.pilotsDone() ||
		(s.totalPop > 0 && 2*s.started >= s.totalPop)) {
		s.allocate()
		// Re-evaluate this instance against its freshly allocated target.
		if s.grant(st) {
			s.pend[si.Instance.ID] = pending{key: k, granted: true}
			return true
		}
	}
	s.pend[si.Instance.ID] = pending{key: k}
	return false
}

// grant decides whether st gets a directed sample now and commits it.
func (s *Stratified) grant(st *stratum) bool {
	if st.sampled()+st.inFlight >= st.target || s.budgetLeft() <= 0 {
		return false
	}
	if s.allocated && st.sinceGrant < st.gap {
		return false // systematic pacing across the stratum's remainder
	}
	st.inFlight++
	s.inFlightTotal++
	st.sinceGrant = 0
	s.streak = 0
	return true
}

// Observe implements core.BudgetedPolicy: it finalises population counts
// and accumulates per-stratum duration measurements. Only valid samples
// (warm state) feed the estimators, bucketed by contention regime;
// warm-up measurements still count toward the budget.
func (s *Stratified) Observe(fi sim.FinishInfo, kind core.SampleKind) {
	p, ok := s.pend[fi.Instance.ID]
	if !ok {
		return // not started through WantDetailed; nothing to account
	}
	delete(s.pend, fi.Instance.ID)
	st := s.strata[p.key]
	st.arrived++
	dur := fi.End - fi.Start
	instr := float64(fi.Instance.Instructions())
	st.instrTotal += instr
	if kind == core.KindFast {
		st.fast.Add(dur, instr)
		return
	}
	st.raw.Add(dur, instr)
	s.detTotal++
	switch kind {
	case core.KindValid:
		st.phase.Add(dur, instr)
		// Before allocation the sampling phase is the pilot: that split
		// is what the "pilot vs directed" budget telemetry reports.
		if s.allocated {
			metricSamplesPhase.Inc()
		} else {
			metricSamplesPilot.Inc()
		}
	case core.KindDirected:
		st.dir.Add(dur, instr)
		metricSamplesDirected.Inc()
	case core.KindWarmup:
		metricSamplesWarmup.Inc()
	}
	if kind != core.KindWarmup {
		st.ipc.Push(fi.IPC)
		st.sinceDet = 0
	}
	if p.granted && st.inFlight > 0 {
		st.inFlight--
		s.inFlightTotal--
	}
}

// FastIPC implements core.BudgetedPolicy: the mean over the stratum's
// most recent detailed IPC samples — the sampler's windowed estimate, at
// the stratifier's finer (type × size class × band) granularity.
func (s *Stratified) FastIPC(si sim.StartInfo) (float64, bool) {
	st, ok := s.strata[s.keyOf(si)]
	if !ok || st.sinceDet > s.cfg.StaleAfter || st.ipc.Len() == 0 {
		return 0, false
	}
	return st.ipc.Mean(), true
}

// pilotsDone reports whether every seen stratum reached its pilot target.
func (s *Stratified) pilotsDone() bool {
	for _, k := range s.order {
		st := s.strata[k]
		if st.sampled()+st.inFlight < s.cfg.Pilot {
			return false
		}
	}
	return len(s.order) > 0
}

// allocate ends the pilot phase: the remaining budget is Neyman-allocated
// over the strata seen so far, and each stratum's pacing gap is derived
// from its expected remaining instances.
func (s *Stratified) allocate() {
	s.traceAllocate(s.allocated, s.allocateBudget)
}

func (s *Stratified) allocateBudget() {
	s.allocated = true
	left := s.budgetLeft()
	if left <= 0 {
		return
	}
	// With a prescan, hold back the share of the budget owed to
	// (type, class) populations that have not produced a single instance
	// yet: programs whose type mix shifts over time (reduction trees,
	// pipeline drains, phase changes) surface whole strata only after the
	// early ones filled their pilots, and spending everything on the
	// early strata would strand the late ones at their pilot size. The
	// reserve is spent by the re-allocation that fires when a new
	// stratum appears.
	if s.totalPop > 0 {
		seenPop := 0
		seenTC := make(map[tcKey]bool, len(s.order))
		for _, k := range s.order {
			tc := tcKey{k.Type, k.Class}
			if !seenTC[tc] {
				seenTC[tc] = true
				seenPop += s.popTC[tc]
			}
		}
		if unseen := s.totalPop - seenPop; unseen > 0 {
			left -= left * unseen / s.totalPop
			if left <= 0 {
				return
			}
		}
	}
	n := len(s.order)
	pops := make([]float64, n)
	weights := make([]float64, n)
	caps := make([]int, n)

	// Pooled pilot residual deviation stands in for strata with < 2
	// samples. Calibration is unknown this early (pilots are mostly
	// phase samples), so the moments use r=1.
	var pooledSum, pooledN float64
	for _, k := range s.order {
		if n, _, _, se2 := s.strata[k].rateMoments(1); n >= 2 {
			pooledSum += float64(n) * math.Sqrt(se2)
			pooledN += float64(n)
		}
	}
	pooled := 0.0
	if pooledN > 0 {
		pooled = pooledSum / pooledN
	}

	var sumW float64
	for i, k := range s.order {
		st := s.strata[k]
		pops[i] = s.estimatePop(st)
		sd := pooled
		if n, _, _, se2 := st.rateMoments(1); n >= 2 {
			sd = math.Sqrt(se2)
		}
		weights[i] = pops[i] * sd
		sumW += weights[i]
		caps[i] = math.MaxInt32
		if s.popTC != nil {
			// With exact populations, never allocate beyond the
			// stratum's remaining instances.
			if remain := int(pops[i]) - st.sampled() - st.inFlight; remain > 0 {
				caps[i] = remain
			} else {
				caps[i] = 0
			}
		}
	}
	if sumW <= 0 {
		// Pilot saw no variance at all: fall back to proportional
		// allocation so the budget is still spent.
		copy(weights, pops)
	}

	metricAllocRounds.Inc()
	quotas := apportion(left, weights, caps)
	for i, k := range s.order {
		st := s.strata[k]
		st.quota = quotas[i]
		metricAllocQuota.Observe(float64(quotas[i]))
		st.target = st.sampled() + st.inFlight + quotas[i]
		// Phase one's contract stands across (re-)allocations: every
		// stratum's first Pilot instances are forced while budget lasts,
		// so a stratum surfacing after allocation is still measured.
		if st.target < s.cfg.Pilot {
			st.target = s.cfg.Pilot
		}
		st.gap = 1
		if s.popTC != nil && quotas[i] > 0 {
			if remain := int(pops[i]) - st.started; remain > 0 {
				if g := remain / (quotas[i] + 1); g > 1 {
					st.gap = g
				}
			}
		}
		st.sinceGrant = 0
	}
}

// estimatePop estimates the stratum's population N̂_h: the exact
// (type, class) population apportioned by observed band shares when a
// prescan is available, observed starts otherwise.
func (s *Stratified) estimatePop(st *stratum) float64 {
	if s.popTC == nil {
		return float64(st.started)
	}
	tc := tcKey{st.key.Type, st.key.Class}
	total := s.popTC[tc]
	if total == 0 {
		return float64(st.started)
	}
	if !s.cfg.Bands {
		return float64(total)
	}
	startedTC := 0
	for _, k := range s.order {
		if k.Type == tc.typ && k.Class == tc.class {
			startedTC += s.strata[k].started
		}
	}
	if startedTC == 0 {
		return float64(total)
	}
	return float64(total) * float64(st.started) / float64(startedTC)
}

// StratumStat summarises one stratum for reports and tests.
type StratumStat struct {
	Key Key
	// Population and Sampled count finished instances and valid
	// detailed observations.
	Population, Sampled int
	// Quota is the Neyman grant beyond the pilot.
	Quota int
	// Instructions is the stratum's exact dynamic instruction total.
	Instructions float64
	// Rate is the sampled cycles-per-instruction rate; ResidStd is the
	// residual standard deviation around it (what Neyman allocation
	// weighs).
	Rate, ResidStd float64
}

// Strata returns per-stratum summaries in first-seen order.
func (s *Stratified) Strata() []StratumStat {
	out := make([]StratumStat, 0, len(s.order))
	for _, k := range s.order {
		st := s.strata[k]
		n, sumD, sumX, se2 := st.rateMoments(1)
		rate := 0.0
		if sumX > 0 {
			rate = sumD / sumX
		}
		out = append(out, StratumStat{
			Key:          k,
			Population:   st.arrived,
			Sampled:      n,
			Quota:        st.quota,
			Instructions: st.instrTotal,
			Rate:         rate,
			ResidStd:     math.Sqrt(se2),
		})
	}
	return out
}
