package strata

import "math"

// Confidence is the stratified estimate of the program's total task
// execution cycles (the sum of every instance's duration — total work,
// as opposed to the makespan) with a finite-population confidence
// interval.
//
// Each stratum is estimated with a ratio estimator using dynamic
// instruction count as the auxiliary variable: the sampled
// cycles-per-instruction rate R_h = Σd_i/Σx_i is applied to the stratum's
// exact instruction total I_h (observed for every instance), so a sampled
// subset skewed toward small or large instances within the stratum does
// not bias the estimate — exactly the failure mode of input-dependent
// task types:
//
//	T̂   = Σ_h R_h·I_h
//	Var = Σ_h N_h·(N_h−n_h)·s²_e,h/n_h     e_i = d_i − R_h·x_i
//	CI  = T̂ ± z·√Var
//
// Directed samples are measured while co-running threads fast-forward,
// so their durations are off by an uncertain regime factor: fast on the
// missing memory contention, or slow on cold micro-architectural state
// after a fast-forwarded stretch. Rather than asserting the noisy
// stratum-matched calibration estimate (Calibration) as truth, the
// interval brackets it two-sidedly: one anchor is the uncalibrated
// estimate (r=1), the other the fully calibrated one in whichever
// direction the matched strata indicate, and both are widened by the
// z-scaled sampling error; Estimate reports the midpoint. Strata with a
// single sample borrow the pooled residual variance; fully sampled
// strata contribute no variance; both sides widen additively by
// DirBiasRelErr of the estimate's uncertain mass (directed samples,
// fallback rates, warm-up measurements — regime bias sampling variance
// cannot see); and the half-width never drops below MinRelErr of the
// estimate.
type Confidence struct {
	// Strata is the number of strata observed.
	Strata int
	// Population is the total number of task instances.
	Population int
	// Sampled is the number of valid detailed observations the estimate
	// uses.
	Sampled int
	// Unsampled counts instances of strata that received no valid
	// detailed sample at all (budget exhausted); their rate falls back
	// to pooled or modelled rates and carries no variance, so a
	// non-zero value flags an over-tight interval.
	Unsampled int
	// Calibration is the contention calibration factor applied to
	// directed-sample durations: the stratum-matched ratio of
	// sampling-phase rates to directed rates (1 when no stratum was
	// measured in both regimes).
	Calibration float64
	// Estimate is T̂, the estimated total task cycles.
	Estimate float64
	// StdErr is √Var.
	StdErr float64
	// Lo and Hi bound the interval at the configured confidence level.
	Lo, Hi float64
	// Z is the critical value the interval was built with.
	Z float64
}

// RelWidth is the interval width relative to the estimate — the
// "how trustworthy" headline of a sampled run.
func (c Confidence) RelWidth() float64 {
	if c.Estimate <= 0 {
		return 0
	}
	return (c.Hi - c.Lo) / c.Estimate
}

// Covers reports whether x (e.g. the detailed reference's total task
// cycles) falls inside the interval.
func (c Confidence) Covers(x float64) bool { return x >= c.Lo && x <= c.Hi }

// calibration estimates the global contention factor r: over every
// stratum measured in both regimes, the instruction-weighted ratio of
// the sampling-phase rate to the directed rate. A directed measurement
// can err in either direction — missing memory contention from
// fast-forwarding co-runners makes it fast (r > 1), stale or cold
// micro-architectural state after a fast-forwarded stretch makes it
// slow (r < 1) — so the ratio is taken as observed, with clamps at
// [1/2, 2] guarding against blow-ups from sparsely sampled strata.
func (s *Stratified) calibration() float64 {
	var num, den float64
	for _, k := range s.order {
		st := s.strata[k]
		if st.dir.n == 0 || st.phase.n == 0 || st.phase.sumX <= 0 || st.dir.sumX <= 0 {
			continue
		}
		// Weight by the directed group's instruction mass: what those
		// instructions would have cost at the phase rate vs what they
		// measured.
		w := st.dir.sumX
		num += w * (st.phase.sumD / st.phase.sumX)
		den += w * (st.dir.sumD / st.dir.sumX)
	}
	if den <= 0 || num <= 0 {
		return 1
	}
	return math.Min(2, math.Max(0.5, num/den))
}

// estimateAt computes the stratified ratio estimate and its sampling
// variance at calibration factor r, plus the sample/population tallies
// and the "uncertain mass": the part of the estimate carried by directed
// samples or regime-fallback rates rather than sampling-phase
// measurements, which scales the interval's bias floor.
func (s *Stratified) estimateAt(r float64) (estimate, variance, uncertain float64, population, sampled, unsampled int) {
	// Pooled quantities: the valid rate over all strata (fallback for
	// unsampled strata) and the pooled residual variance (fallback for
	// single-sample strata).
	var pooledD, pooledX, pooledSe2Sum, pooledDF float64
	for _, k := range s.order {
		n, sumD, sumX, se2 := s.strata[k].rateMoments(r)
		pooledD += sumD
		pooledX += sumX
		if n >= 2 {
			pooledSe2Sum += float64(n-1) * se2
			pooledDF += float64(n - 1)
		}
	}
	pooledSe2 := 0.0
	if pooledDF > 0 {
		pooledSe2 = pooledSe2Sum / pooledDF
	}

	for _, k := range s.order {
		st := s.strata[k]
		N := st.arrived
		if N == 0 {
			continue
		}
		n, sumD, sumX, se2 := st.rateMoments(r)
		population += N
		sampled += n
		// Warm-up measurements — detailed observations that are not valid
		// samples (raw minus both valid groups) — are actual simulated
		// durations, so they enter the estimate as measured mass instead
		// of being re-predicted at the warm sampling rate: cold
		// micro-architectural state makes warm-up instances systematically
		// slower than the warm rate, and at small populations that bias
		// dominates exactly while the finite-population correction erases
		// the variance that would otherwise cover it (a coverage-miss
		// family the estimator fuzzer found and minimized to
		// "gen:forkjoin(tasks=8,mean=64)").
		warmN := st.raw.n - n
		warmD := st.raw.sumD - st.phase.sumD - st.dir.sumD
		warmX := st.raw.sumX - st.phase.sumX - st.dir.sumX
		if warmN < 0 || warmX < 0 || warmD < 0 {
			warmN, warmD, warmX = 0, 0, 0
		}
		// extraX is the instruction mass the rate extrapolates over; the
		// warm-measured mass is carried by warmD directly.
		extraX := st.instrTotal - warmX
		if extraX < 0 {
			extraX = 0
		}
		rate := 0.0
		switch {
		case n > 0 && sumX > 0:
			rate = sumD / sumX
			// The stratum's directed instruction share of its
			// extrapolated contribution was measured under an uncertain
			// contention regime.
			uncertain += rate * extraX * st.dir.sumX / (st.phase.sumX + st.dir.sumX)
		case pooledX > 0:
			// No valid sample: the pooled valid rate is the best
			// stand-in; beyond that, the modelled fast-forward rate,
			// then the stratum's own warm-up rate.
			rate = pooledD / pooledX
			unsampled += N
			uncertain += rate * extraX
		case st.fast.sumX > 0:
			rate = st.fast.sumD / st.fast.sumX
			unsampled += N
			uncertain += rate * extraX
		case st.raw.sumX > 0:
			rate = st.raw.sumD / st.raw.sumX
			unsampled += N
			uncertain += rate * extraX
		}
		estimate += warmD + rate*extraX
		// Warm-up durations are actual measurements of the sampled run but
		// biased estimates of the reference (cold state is why they are not
		// valid samples), so their mass counts as uncertain and widens the
		// bias floor instead of carrying sampling variance.
		uncertain += warmD
		// The extrapolation's finite population excludes the warm-measured
		// instances: a fully detailed stratum (n + warm-ups = N) is exact
		// and contributes no variance.
		if base := N - warmN; n > 0 && n < base {
			if n < 2 {
				se2 = pooledSe2
			}
			variance += float64(base) * float64(base-n) * se2 / float64(n)
		}
	}
	return estimate, variance, uncertain, population, sampled, unsampled
}

// Confidence computes the stratified estimate from the run's accumulated
// strata. Call it after the simulation completes.
func (s *Stratified) Confidence() Confidence {
	r := s.calibration()
	c := Confidence{Strata: len(s.order), Z: s.cfg.Z, Calibration: r}

	// Bracket the calibration two-sidedly: one anchor trusts the
	// measurements as taken (r=1), the other applies the full regime
	// correction, whichever direction the stratum-matched data
	// indicates (r > 1: directed samples ran fast on missing
	// contention; r < 1: they ran slow on cold micro-architectural
	// state).
	rLo, rHi := math.Min(r, 1), math.Max(r, 1)
	var lo, hi, variance, uncertain float64
	hi, variance, uncertain, c.Population, c.Sampled, c.Unsampled = s.estimateAt(rHi)
	lo = hi
	if rLo < rHi {
		lo, _, _, _, _, _ = s.estimateAt(rLo)
	}
	c.Estimate = (lo + hi) / 2
	c.StdErr = math.Sqrt(variance)
	half := c.Z * c.StdErr
	// The share of the estimate resting on directed samples, fallback
	// rates or warm-up measurements carries regime bias that sampling
	// variance cannot see. Bias and sampling error are independent error
	// sources, so the allowance adds to the z-scaled term on both sides —
	// maxing them understates cells where a legitimate variance is just
	// large enough to mask a real bias (the estimator fuzzer's second
	// catch: tightening the warm-up variance exposed covered-by-luck
	// cells whose residual contention bias the old floor never admitted).
	bias := s.cfg.DirBiasRelErr * uncertain
	c.Lo = lo - half - bias
	c.Hi = hi + half + bias
	// The base half-width floor covers the measurement bias of mid-run
	// detailed samples even in runs measured purely from sampling phases
	// (uncertain ≈ 0): never report a half-width below MinRelErr of the
	// estimate.
	if floor := s.cfg.MinRelErr * c.Estimate; c.Estimate-c.Lo < floor || c.Hi-c.Estimate < floor {
		c.Lo = math.Min(c.Lo, c.Estimate-floor)
		c.Hi = math.Max(c.Hi, c.Estimate+floor)
	}
	metricCIRelWidthPct.Observe(100 * c.RelWidth())
	s.traceConfidence(c)
	return c
}
