package strata_test

import (
	"testing"

	"taskpoint/internal/core"

	// Importing the package registers the "stratified" policy family.
	_ "taskpoint/internal/strata"
)

// TestParsePolicyStratified checks the registered "stratified" family:
// accepted spellings round-trip through Policy.Name and malformed
// arguments are rejected instead of silently defaulting.
func TestParsePolicyStratified(t *testing.T) {
	for in, want := range map[string]string{
		"stratified(400)":  "stratified(400)",
		"stratified:250":   "stratified(250)",
		" stratified( 7 )": "stratified(7)",
	} {
		p, err := core.ParsePolicy(in)
		if err != nil {
			t.Errorf("ParsePolicy(%q): %v", in, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("ParsePolicy(%q).Name() = %q, want %q", in, p.Name(), want)
		}
	}
	for _, bad := range []string{
		"stratified", "stratified()", "stratified(0)", "stratified(-3)",
		"stratified(1.5)", "stratified(x)", "stratified:", "stratified( )",
		"stratified(99999999999999999999)",
	} {
		if _, err := core.ParsePolicy(bad); err == nil {
			t.Errorf("ParsePolicy(%q): expected error", bad)
		}
	}
}

// FuzzParsePolicy fuzzes the parser over every registered family: any
// accepted input must produce a Policy whose Name reparses to an
// identical policy (Name is the canonical form), and the parser must
// never panic on arbitrary input.
func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{
		"lazy", " lazy ", "periodic(250)", "periodic:1000", "periodic( 42 )",
		"stratified(400)", "stratified:250", "stratified(1)",
		"", "eager", "periodic", "periodic()", "periodic(0)", "periodic:-5",
		"periodic(x)", "stratified()", "stratified(1e3)", "périodic(9)",
		"periodic(9(", ":(", "stratified((1))", "periodic:2:3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := core.ParsePolicy(s)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		name := p.Name()
		back, err := core.ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q) accepted but canonical name %q rejected: %v", s, name, err)
		}
		if back.Name() != name {
			t.Fatalf("round trip drifted: %q -> %q -> %q", s, name, back.Name())
		}
	})
}
