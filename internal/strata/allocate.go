package strata

import "sort"

// apportion distributes total integer units over weights, capped per
// index, by iterated largest-remainder rounding: each round splits the
// remaining units proportionally among uncapped indices, floors the
// shares, hands the leftovers to the largest fractional parts (ties to
// the lower index, keeping the result deterministic), and repeats until
// the units are spent or every positive-weight index is capped.
func apportion(total int, weights []float64, caps []int) []int {
	out := make([]int, len(weights))
	for total > 0 {
		var sumW float64
		for i, w := range weights {
			if out[i] < caps[i] && w > 0 {
				sumW += w
			}
		}
		if sumW <= 0 {
			break
		}
		type frac struct {
			idx int
			rem float64
		}
		var fracs []frac
		granted := 0
		for i, w := range weights {
			if out[i] >= caps[i] || w <= 0 {
				continue
			}
			share := float64(total) * w / sumW
			add := int(share)
			if out[i]+add >= caps[i] {
				add = caps[i] - out[i]
			} else {
				fracs = append(fracs, frac{idx: i, rem: share - float64(add)})
			}
			out[i] += add
			granted += add
		}
		left := total - granted
		sort.Slice(fracs, func(a, b int) bool {
			if fracs[a].rem != fracs[b].rem {
				return fracs[a].rem > fracs[b].rem
			}
			return fracs[a].idx < fracs[b].idx
		})
		for _, f := range fracs {
			if left == 0 {
				break
			}
			if out[f.idx] < caps[f.idx] {
				out[f.idx]++
				left--
			}
		}
		if left == total {
			break // no progress possible
		}
		total = left
	}
	return out
}
