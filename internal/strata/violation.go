package strata

import "fmt"

// ViolationClass names one way a sampled run can break the accuracy
// contract the paper's speedup claim rests on. The estimator fuzzer
// (internal/fuzz) hunts for scenarios exhibiting these, minimizes them and
// commits them to the regression corpus; the classes are its failure
// signatures.
type ViolationClass string

const (
	// CoverageMiss: the run reported a confidence interval that does not
	// cover the detailed reference's total task cycles — the interval
	// promised 95% coverage and the truth fell outside it.
	CoverageMiss ViolationClass = "coverage-miss"
	// IntervalFloorMiss: the reported interval is narrower than the
	// configured relative-error floor. The estimator must never report a
	// half-width below MinRelErr of the estimate (mid-run measurement
	// bias does not shrink with samples), so this class flags a broken
	// estimator invariant rather than an unlucky draw.
	IntervalFloorMiss ViolationClass = "interval-floor-miss"
	// Bias: the sampled run's execution-time error against the detailed
	// reference exceeded the per-policy ceiling — a worst-case error
	// spike, whether or not an interval was reported.
	Bias ViolationClass = "bias"
)

// Check parameterises violation classification for one completed cell.
type Check struct {
	// DetailedTaskCycles is the detailed reference's total task cycles,
	// the quantity a reported Confidence claims to cover.
	DetailedTaskCycles float64
	// ErrPct is the sampled run's absolute execution-time error in
	// percent; ErrCeilingPct is the per-policy ceiling it must stay
	// under. A non-positive ceiling disables the Bias class.
	ErrPct        float64
	ErrCeilingPct float64
	// MinRelErr is the half-width floor the estimator was configured
	// with (Config.MinRelErr); zero disables the IntervalFloorMiss
	// class. Note the floor check uses the base floor only — the
	// directed-share widening (DirBiasRelErr) can only make intervals
	// wider, so an interval under the base floor is a violation under
	// any directed share.
	MinRelErr float64
}

// Classify reports every violation class the cell exhibits, in fixed
// order (coverage-miss, interval-floor-miss, bias) so signatures compare
// and log deterministically. c is the cell's reported confidence interval,
// nil for policies that report none (which can then only violate Bias).
func Classify(c *Confidence, chk Check) []ViolationClass {
	var out []ViolationClass
	if c != nil && !c.Covers(chk.DetailedTaskCycles) {
		out = append(out, CoverageMiss)
	}
	if c != nil && chk.MinRelErr > 0 && c.Estimate > 0 {
		// Allow for float rounding right at the floor.
		floor := chk.MinRelErr*c.Estimate - 1e-9*c.Estimate
		if c.Estimate-c.Lo < floor || c.Hi-c.Estimate < floor {
			out = append(out, IntervalFloorMiss)
		}
	}
	if chk.ErrCeilingPct > 0 && chk.ErrPct > chk.ErrCeilingPct {
		out = append(out, Bias)
	}
	return out
}

// Describe renders one violation class with the cell's numbers — the
// human-readable half of a fuzz log line.
func Describe(v ViolationClass, c *Confidence, chk Check) string {
	switch v {
	case CoverageMiss:
		return fmt.Sprintf("%s: detailed %.0f outside [%.0f, %.0f]", v, chk.DetailedTaskCycles, c.Lo, c.Hi)
	case IntervalFloorMiss:
		return fmt.Sprintf("%s: half-width below %.2f%% of estimate %.0f", v, 100*chk.MinRelErr, c.Estimate)
	case Bias:
		return fmt.Sprintf("%s: err %.2f%% over ceiling %.2f%%", v, chk.ErrPct, chk.ErrCeilingPct)
	default:
		return string(v)
	}
}
