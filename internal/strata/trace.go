package strata

import "taskpoint/internal/obs"

// SetTrace attaches a flight recorder for the coming run, with parent the
// engine's sampled-phase span: the policy opens its pilot → allocation →
// directed phase spans beneath it and attaches per-stratum cost events to
// it, so a trace query can attribute a cell's sampled wall-clock to the
// sampling phases and price each stratum's CI contribution. The engine
// discovers this method through an optional interface; a nil rec disables
// tracing for the run.
func (s *Stratified) SetTrace(rec *obs.Recorder, parent obs.Span) {
	s.rec = rec
	s.parent = parent
	s.pilotSpan = obs.Span{}
	s.dirSpan = obs.Span{}
}

// startPhase opens a phase span under the engine's parent span, or as a
// root span when the engine attached a bare recorder.
func (s *Stratified) startPhase(name string, fields ...obs.Field) obs.Span {
	if s.parent.Valid() {
		return s.parent.StartSpan(name, fields...)
	}
	return s.rec.StartSpan(name, fields...)
}

// emit attaches an event to the parent span when there is one.
func (s *Stratified) emit(kind string, fields ...obs.Field) {
	if s.parent.Valid() {
		s.parent.Emit(kind, fields...)
	} else {
		s.rec.Emit(kind, fields...)
	}
}

// tracePilotStart opens the pilot-phase span at the first instance the
// policy sees (no-op once open, after allocation, or without a recorder).
func (s *Stratified) tracePilotStart() {
	if s.rec == nil || s.allocated || s.pilotSpan.Valid() {
		return
	}
	s.pilotSpan = s.startPhase("strata.pilot", obs.Int("pilot", s.cfg.Pilot), obs.Int("budget", s.cfg.Budget))
}

// traceAllocate brackets one allocation round: the first round closes the
// pilot span and opens the directed span; every round gets its own
// allocation span recording the budget split it decided.
func (s *Stratified) traceAllocate(realloc bool, run func()) {
	if s.rec == nil {
		run()
		return
	}
	if !realloc && s.pilotSpan.Valid() {
		s.pilotSpan.End(obs.Int("strata", len(s.order)), obs.Int("samples", s.detTotal))
		s.pilotSpan = obs.Span{}
	}
	sp := s.startPhase("strata.allocate", obs.Bool("realloc", realloc), obs.Int("budget_left", s.budgetLeft()))
	run()
	quota := 0
	for _, k := range s.order {
		quota += s.strata[k].quota
	}
	sp.End(obs.Int("strata", len(s.order)), obs.Int("quota", quota))
	if !realloc {
		s.dirSpan = s.startPhase("strata.directed")
	}
}

// traceConfidence closes any open phase span and attaches the run's
// per-stratum summaries plus the interval verdict to the parent span —
// the raw material of sample-cost-per-CI-point reporting.
func (s *Stratified) traceConfidence(c Confidence) {
	if s.rec == nil {
		return
	}
	if s.pilotSpan.Valid() {
		s.pilotSpan.End(obs.Int("strata", len(s.order)), obs.Int("samples", s.detTotal))
		s.pilotSpan = obs.Span{}
	}
	if s.dirSpan.Valid() {
		s.dirSpan.End(obs.Int("samples", s.detTotal))
		s.dirSpan = obs.Span{}
	}
	for _, stat := range s.Strata() {
		s.emit("strata.stratum",
			obs.String("stratum", stat.Key.String()),
			obs.Int("population", stat.Population),
			obs.Int("sampled", stat.Sampled),
			obs.Int("quota", stat.Quota),
			obs.Float("rate", stat.Rate),
			obs.Float("resid_std", stat.ResidStd))
	}
	s.emit("strata.confidence",
		obs.Int("strata", c.Strata),
		obs.Int("population", c.Population),
		obs.Int("sampled", c.Sampled),
		obs.Int("unsampled", c.Unsampled),
		obs.Float("estimate", c.Estimate),
		obs.Float("rel_width_pct", 100*c.RelWidth()))
}
