// Package strata implements two-phase stratified sampling on top of the
// TaskPoint sampler, the direction "CPU Simulation Using Two-Phase
// Stratified Sampling" (Ekman) points to for the residual bias the paper's
// §V-B names: input-dependent task types whose IPC correlates with
// instance size.
//
// Task instances are partitioned into strata by (task type × size class ×
// observed concurrency band). A cheap pilot phase simulates a fixed small
// number of instances per stratum in detail; the per-stratum variance
// estimated from the pilots then drives a Neyman allocation of the
// remaining detailed budget (quota_h ∝ N_h·σ_h), so strata whose
// durations vary the most receive the most detailed samples. The
// Stratified policy plugs into core.Sampler through the BudgetedPolicy
// extension point: quotas force detailed simulation of specific instances
// (directed samples) and suppress periodic resampling entirely.
//
// Because every instance passes through the policy, final stratum
// populations are exact, and the accumulated per-stratum means and
// variances propagate into a stratified estimate of the program's total
// task execution cycles with a finite-population 95% confidence interval
// (Confidence) — every sampled run can report how trustworthy it is.
package strata

import (
	"fmt"
	"math/bits"

	"taskpoint/internal/core"
	"taskpoint/internal/sim"
	"taskpoint/internal/trace"
)

// Key identifies a stratum: a task type, refined by the instance-size
// class shared with the sampler's history keys and by the concurrency
// band observed when the instance starts.
type Key struct {
	// Type is the task type.
	Type trace.TypeID
	// Class is the power-of-four instruction-count bucket
	// (core.SizeClass).
	Class uint8
	// Band is the power-of-two concurrency band (Band) observed at the
	// instance's start, or 0 when banding is disabled.
	Band uint8
}

// String renders the key for reports, e.g. "T3/c7/b2".
func (k Key) String() string {
	return fmt.Sprintf("T%d/c%d/b%d", k.Type, k.Class, k.Band)
}

// tcKey is a stratum key without the band dimension — the granularity at
// which populations are known statically from the program.
type tcKey struct {
	typ   trace.TypeID
	class uint8
}

// Band buckets the number of concurrently running threads into powers of
// two: 1 → 0, 2 → 1, 3-4 → 2, 5-8 → 3, and so on. Instances of one type
// executed at very different parallelism levels contend differently for
// shared resources, so they are sampled as separate strata.
func Band(running int) uint8 {
	if running <= 1 {
		return 0
	}
	return uint8(bits.Len(uint(running - 1)))
}

// keyOf derives the stratum key of a starting instance.
func (s *Stratified) keyOf(si sim.StartInfo) Key {
	k := Key{
		Type:  si.Instance.Type,
		Class: core.SizeClass(si.Instance.Instructions()),
	}
	if s.cfg.Bands {
		k.Band = Band(si.Running)
	}
	return k
}
