// Acceptance tests for the two-phase stratified sampling subsystem
// (internal/strata): on the paper's input-dependent benchmarks the
// Stratified policy must not lose accuracy against the plain size-class
// sampler at an equal detailed budget, and its reported confidence
// interval must cover the detailed reference's true total task cycles.
package taskpoint_test

import (
	"testing"

	"taskpoint"
	"taskpoint/internal/stats"
)

// plainSizeClassRun runs the §V-B size-class sampler (lazy) and returns
// its error and detailed-instance count — the budget reference.
func plainSizeClassRun(t *testing.T, name string, scale float64, seed uint64, threads int) (errPct float64, detailed int, det *taskpoint.Result) {
	t.Helper()
	prog := taskpoint.Benchmark(name, scale, seed)
	cfg := taskpoint.HighPerf(threads)
	det, err := taskpoint.SimulateDetailed(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	params := taskpoint.DefaultParams()
	params.SizeClasses = true
	samp, st, err := taskpoint.SimulateSampled(cfg, prog, params, taskpoint.LazyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	return taskpoint.ErrorPct(samp, det), st.DetailedStarted, det
}

// stratifiedRun runs the stratified policy at budget B against the same
// detailed reference.
func stratifiedRun(t *testing.T, name string, scale float64, seed uint64, threads, budget int, det *taskpoint.Result) (errPct float64, conf taskpoint.Confidence) {
	t.Helper()
	prog := taskpoint.Benchmark(name, scale, seed)
	cfg := taskpoint.HighPerf(threads)
	res, _, conf, err := taskpoint.SimulateStratified(cfg, prog, taskpoint.DefaultParams(), budget)
	if err != nil {
		t.Fatal(err)
	}
	return taskpoint.ErrorPct(res, det), conf
}

// TestStratifiedBeatsPlainOnDedup: dedup is the paper's poster child for
// input-dependent instance sizes (§V-B). At an equal detailed budget
// (B = the plain sampler's detailed-instance count), stratified sampling
// must report an execution-time error no worse than the plain size-class
// sampler on every seed.
func TestStratifiedBeatsPlainOnDedup(t *testing.T) {
	const scale, threads = 1.0 / 32, 8
	for _, seed := range []uint64{1, 2, 3, 42} {
		plainErr, detailed, det := plainSizeClassRun(t, "dedup", scale, seed, threads)
		stratErr, _ := stratifiedRun(t, "dedup", scale, seed, threads, detailed, det)
		if stratErr > plainErr {
			t.Errorf("seed %d: stratified error %.2f%% > plain size-class error %.2f%% at equal budget %d",
				seed, stratErr, plainErr, detailed)
		}
	}
}

// TestStratifiedBeatsPlainOnFreqmine: freqmine's mine_subtree spans two
// orders of magnitude in instance size, so single-run errors are noisy in
// both configurations; the comparison is on the seed-averaged error at
// equal per-seed budgets.
func TestStratifiedBeatsPlainOnFreqmine(t *testing.T) {
	const scale, threads = 1.0 / 8, 8
	var plainErrs, stratErrs []float64
	for _, seed := range []uint64{1, 3, 5, 6, 7} {
		plainErr, detailed, det := plainSizeClassRun(t, "freqmine", scale, seed, threads)
		stratErr, _ := stratifiedRun(t, "freqmine", scale, seed, threads, detailed, det)
		plainErrs = append(plainErrs, plainErr)
		stratErrs = append(stratErrs, stratErr)
	}
	plainMean, stratMean := stats.Mean(plainErrs), stats.Mean(stratErrs)
	if stratMean > plainMean {
		t.Errorf("stratified mean error %.2f%% > plain size-class mean error %.2f%% (per-seed: strat %v vs plain %v)",
			stratMean, plainMean, stratErrs, plainErrs)
	}
}

// TestStratifiedConfidenceCoversTruth: across the paper's input-dependent
// benchmarks and seeds, the detailed reference's total task cycles must
// fall inside every reported 95% confidence interval, and the interval
// must be meaningful (non-zero width, multiple strata).
//
// The guarantee is scoped to input-dependent workloads, whose residual
// ratio variance keeps the interval honest. Highly regular memory-bound
// workloads (sparse-matrix-vector-multiplication) collapse the ratio
// residuals to near zero while a steady-state contention bias of a few
// percent remains — shared-cache pressure in a sampled run never reaches
// the reference's steady state — so their intervals can undercover; see
// the "Confidence intervals" section of the README.
func TestStratifiedConfidenceCoversTruth(t *testing.T) {
	cases := []struct {
		bench   string
		scale   float64
		budget  int
		threads int
	}{
		{"dedup", 1.0 / 32, 150, 8},
		{"freqmine", 1.0 / 8, 160, 8},
	}
	for _, tc := range cases {
		for _, seed := range []uint64{1, 2, 3, 4, 5, 42} {
			prog := taskpoint.Benchmark(tc.bench, tc.scale, seed)
			cfg := taskpoint.HighPerf(tc.threads)
			det, err := taskpoint.SimulateDetailed(cfg, prog)
			if err != nil {
				t.Fatal(err)
			}
			_, _, conf, err := taskpoint.SimulateStratified(cfg, prog, taskpoint.DefaultParams(), tc.budget)
			if err != nil {
				t.Fatal(err)
			}
			trueTotal := det.TotalTaskCycles()
			if !conf.Covers(trueTotal) {
				t.Errorf("%s seed %d: true total %.4g outside 95%% CI [%.4g, %.4g] (estimate %.4g)",
					tc.bench, seed, trueTotal, conf.Lo, conf.Hi, conf.Estimate)
			}
			if conf.RelWidth() <= 0 {
				t.Errorf("%s seed %d: degenerate interval %+v", tc.bench, seed, conf)
			}
			if conf.Strata < 2 {
				t.Errorf("%s seed %d: only %d strata", tc.bench, seed, conf.Strata)
			}
			if conf.Population != prog.NumTasks() {
				t.Errorf("%s seed %d: population %d, want %d instances",
					tc.bench, seed, conf.Population, prog.NumTasks())
			}
		}
	}
}
