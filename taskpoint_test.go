package taskpoint_test

import (
	"testing"

	"taskpoint"
)

func TestPublicBenchmarkList(t *testing.T) {
	names := taskpoint.Benchmarks()
	if len(names) != 19 {
		t.Fatalf("Benchmarks() returned %d names, want 19", len(names))
	}
	for _, n := range names {
		if _, err := taskpoint.LookupBenchmark(n, 1.0/64, 1); err != nil {
			t.Errorf("LookupBenchmark(%q): %v", n, err)
		}
	}
}

func TestLookupBenchmarkErrors(t *testing.T) {
	if _, err := taskpoint.LookupBenchmark("nope", 0.5, 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := taskpoint.LookupBenchmark("cholesky", 0, 1); err == nil {
		t.Error("zero scale accepted")
	}
}

func TestBenchmarkPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	taskpoint.Benchmark("nope", 0.5, 1)
}

func TestEndToEndSampledVsDetailed(t *testing.T) {
	prog := taskpoint.Benchmark("blackscholes", 1.0/64, 3)
	cfg := taskpoint.HighPerf(4)
	det, err := taskpoint.SimulateDetailed(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	samp, st, err := taskpoint.SimulateSampled(cfg, prog,
		taskpoint.DefaultParams(), taskpoint.LazyPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if e := taskpoint.ErrorPct(samp, det); e > 25 {
		t.Errorf("error %.2f%% unexpectedly high for a regular benchmark", e)
	}
	if st.FastStarted == 0 {
		t.Error("nothing was fast-forwarded")
	}
	if samp.DetailFraction() >= 1 {
		t.Error("sampling simulated everything in detail")
	}
}

func TestPeriodicPolicyPublicAPI(t *testing.T) {
	prog := taskpoint.Benchmark("swaptions", 1.0/64, 3)
	cfg := taskpoint.LowPower(2)
	res, st, err := taskpoint.SimulateSampled(cfg, prog,
		taskpoint.DefaultParams(), taskpoint.PeriodicPolicy(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Error("no simulated time")
	}
	if st.ResamplesPeriodic == 0 {
		t.Error("periodic policy with P=10 never resampled")
	}
}

// fullDetail is a custom controller: a user-supplied policy via the public
// Controller surface.
type fullDetail struct{}

func (fullDetail) TaskStart(taskpoint.StartInfo) taskpoint.Decision { return taskpoint.Detailed() }
func (fullDetail) TaskFinish(taskpoint.FinishInfo)                  {}

func TestSimulateWithCustomController(t *testing.T) {
	prog := taskpoint.Benchmark("histogram", 1.0/64, 3)
	res, err := taskpoint.SimulateWith(taskpoint.HighPerf(2), prog, fullDetail{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetailFraction() != 1 {
		t.Errorf("custom detailed controller: detail fraction %v, want 1", res.DetailFraction())
	}
}
