package taskpoint_test

import (
	"bytes"
	"context"
	"fmt"

	"taskpoint"
)

// Generate one of the paper's Table I benchmarks. Generation is
// deterministic in (name, scale, seed), so campaigns are reproducible.
func ExampleBenchmark() {
	prog := taskpoint.Benchmark("cholesky", 1.0/16, 42)

	fmt.Println("benchmark:", prog.Name)
	fmt.Println("task types:", prog.NumTypes())
	fmt.Println("deterministic:", prog.NumTasks() == taskpoint.Benchmark("cholesky", 1.0/16, 42).NumTasks())
	// Output:
	// benchmark: cholesky
	// task types: 4
	// deterministic: true
}

// Run the cycle-level detailed simulation — the reference against which
// sampling error is measured.
func ExampleSimulateDetailed() {
	prog := taskpoint.Benchmark("cholesky", 1.0/32, 42)
	cfg := taskpoint.HighPerf(4)

	res, err := taskpoint.SimulateDetailed(cfg, prog)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("finished:", res.Cycles > 0)
	fmt.Println("all instructions in detail:", res.DetailFraction() == 1)
	fmt.Println("tasks fast-forwarded:", res.FastTasks)
	// Output:
	// finished: true
	// all instructions in detail: true
	// tasks fast-forwarded: 0
}

// Run TaskPoint's sampled simulation and compare it against the detailed
// reference: a small execution-time error at a fraction of the detailed
// instructions.
func ExampleSimulateSampled() {
	cfg := taskpoint.HighPerf(4)
	detailed, err := taskpoint.SimulateDetailed(cfg, taskpoint.Benchmark("cholesky", 1.0/32, 42))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sampled, stats, err := taskpoint.SimulateSampled(cfg, taskpoint.Benchmark("cholesky", 1.0/32, 42),
		taskpoint.DefaultParams(), taskpoint.LazyPolicy())
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	fmt.Println("error below 5%:", taskpoint.ErrorPct(sampled, detailed) < 5)
	fmt.Println("detail fraction below 50%:", sampled.DetailFraction() < 0.5)
	fmt.Println("sampled some tasks in detail:", stats.DetailedStarted > 0)
	fmt.Println("fast-forwarded the rest:", stats.FastStarted > 0)
	// Output:
	// error below 5%: true
	// detail fraction below 50%: true
	// sampled some tasks in detail: true
	// fast-forwarded the rest: true
}

// Run two-phase stratified sampling with a detailed budget and read the
// confidence interval of the cycle estimate. The detailed reference's
// true total task cycles falls inside the reported 95% interval.
func ExampleSimulateStratified() {
	prog := taskpoint.Benchmark("dedup", 1.0/32, 42)
	cfg := taskpoint.HighPerf(8)

	detailed, err := taskpoint.SimulateDetailed(cfg, prog)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_, stats, conf, err := taskpoint.SimulateStratified(cfg, prog, taskpoint.DefaultParams(), 150)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	fmt.Println("strata observed:", conf.Strata > 1)
	fmt.Println("every instance accounted:", conf.Population == prog.NumTasks())
	fmt.Println("directed samples taken:", stats.DirectedStarted > 0)
	fmt.Println("interval is meaningful:", conf.RelWidth() > 0 && conf.RelWidth() < 0.5)
	fmt.Println("true total inside 95% CI:", conf.Covers(detailed.TotalTaskCycles()))
	// Output:
	// strata observed: true
	// every instance accounted: true
	// directed samples taken: true
	// interval is meaningful: true
	// true total inside 95% CI: true
}

// Drive the unified experiment engine directly: declare a grid of
// requests (workload × architecture × threads × policy) and iterate the
// reports. RunAll shards the grid across the worker pool but yields in
// request order, and the context cancels in-flight simulations — the one
// code path behind the Runner, the sweep engine and the corpus harness.
func ExampleEngine_RunAll() {
	eng := taskpoint.NewEngine(taskpoint.WithWorkers(4))

	var reqs []taskpoint.Request
	for _, workload := range []string{"cholesky", "vector-operation"} {
		for _, policy := range []string{"lazy", "periodic(250)"} {
			reqs = append(reqs, taskpoint.Request{
				Workload: workload,
				Arch:     "hp", // canonicalised to "high-performance"
				Threads:  2,
				Scale:    1.0 / 64,
				Seed:     42,
				Policy:   policy,
			})
		}
	}

	for rep, err := range eng.RunAll(context.Background(), reqs) {
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("%s: error below 10%%: %v\n", rep.Request.Key(), rep.ErrPct < 10)
	}
	// Output:
	// cholesky|high-performance|2|lazy|42: error below 10%: true
	// cholesky|high-performance|2|periodic(250)|42: error below 10%: true
	// vector-operation|high-performance|2|lazy|42: error below 10%: true
	// vector-operation|high-performance|2|periodic(250)|42: error below 10%: true
}

// Declare and run a small design-space campaign with the sweep engine.
func ExampleNewSweep() {
	spec := taskpoint.SweepSpec{
		Name:       "example",
		Scale:      1.0 / 64,
		Benchmarks: []string{"vector-operation"},
		Archs:      []string{"hp", "lp"},
		Threads:    []int{2},
		Policies:   []string{"lazy", "periodic:250"},
	}
	eng, err := taskpoint.NewSweep(spec, 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	recs, err := eng.Run(nil, nil) // nil writer: no JSONL stream needed here
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	fmt.Println("cells:", len(recs))
	for _, s := range taskpoint.SummarizeSweep(recs) {
		fmt.Printf("%s/%s: error below 10%%: %v\n", s.Arch, s.Policy, s.MaxErrPct < 10)
	}
	// Output:
	// cells: 4
	// high-performance/lazy: error below 10%: true
	// high-performance/periodic(250): error below 10%: true
	// low-power/lazy: error below 10%: true
	// low-power/periodic(250): error below 10%: true
}

// Generate a synthetic scenario from the property-driven generator: a
// DAG pattern family plus orthogonal knobs (size distribution, phases,
// input dependence), named by a spec string that works everywhere a
// benchmark name does.
func ExampleParseScenario() {
	sc, err := taskpoint.ParseScenario("gen:pipeline(tasks=128,depth=4,size=heavytail,inputdep=0.8)")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	prog, err := taskpoint.LookupBenchmark(sc.Spec(), 1, 42)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	again, _ := taskpoint.LookupBenchmark(sc.Spec(), 1, 42)

	fmt.Println("spec:", sc.Spec())
	fmt.Println("task types:", prog.NumTypes())
	fmt.Println("instances:", prog.NumTasks())
	fmt.Println("deterministic:", prog.TotalInstructions() == again.TotalInstructions())
	// Output:
	// spec: gen:pipeline(tasks=128,depth=4,size=heavytail,inputdep=0.8)
	// task types: 4
	// instances: 128
	// deterministic: true
}

// Record a campaign through the flight recorder and read the structured
// span tree back: every engine run leaves paired span.begin/span.end
// lines (campaign → cell → baseline/sampled), and ReadSpans rebuilds the
// hierarchy from the JSONL bytes.
func ExampleReadSpans() {
	var buf bytes.Buffer
	rec := taskpoint.NewRecorder(&buf)
	eng := taskpoint.NewEngine(taskpoint.WithWorkers(1), taskpoint.WithRecorder(rec))

	_, err := eng.Run(context.Background(), taskpoint.Request{
		Workload: "cholesky", Arch: "hp", Threads: 2, Scale: 1.0 / 64, Seed: 42, Policy: "lazy",
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rec.Close()

	tr, err := taskpoint.ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cell := tr.Roots[0]
	fmt.Println("clean trace:", tr.Clean)
	fmt.Println("root span:", cell.Name)
	for _, child := range cell.Children {
		fmt.Println("  phase:", child.Name)
	}
	// Output:
	// clean trace: true
	// root span: cell
	//   phase: baseline
	//   phase: sampled
}

// Analyze a recorded trace into the campaign cost report — the same
// attribution cmd/obsq prints: wall-clock by phase and cell, the critical
// path through the worker pool, and baseline-cache economics.
func ExampleObsqReport() {
	rep, err := taskpoint.AnalyzeTraceFile("internal/obs/query/testdata/golden_trace.jsonl")
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	fmt.Println("cells:", len(rep.Cells))
	fmt.Println("cache hits:", rep.Cache.Hits)
	fmt.Printf("critical path: %d cells, %.1f%% of the campaign\n",
		len(rep.CriticalPath.Steps), rep.CriticalPath.CoveragePct)
	for _, s := range rep.Stragglers {
		fmt.Printf("straggler: %s at %.2fx the group median\n", s.Workload, s.Ratio)
	}
	// Output:
	// cells: 5
	// cache hits: 3
	// critical path: 3 cells, 99.2% of the campaign
	// straggler: cholesky at 2.03x the group median
}

// Run a small generated accuracy-stress corpus: scenarios drawn across
// the family x knob grid, every policy vs the detailed reference, with
// per-policy error and CI-coverage summaries.
func ExampleRunCorpus() {
	spec := taskpoint.DefaultCorpus(3)
	recs, err := taskpoint.RunCorpus(spec, 2, nil, nil, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sums := taskpoint.SummarizeCorpus(recs)
	fmt.Println("records:", len(recs))
	for _, s := range sums {
		fmt.Printf("%s: %d scenarios, ci cells %d\n", s.Policy, s.Scenarios, s.CICells)
	}
	// Output:
	// records: 9
	// lazy: 3 scenarios, ci cells 0
	// periodic(64): 3 scenarios, ci cells 0
	// stratified(256): 3 scenarios, ci cells 3
}

// Content-address an experiment cell: the SHA-256 of its request's
// canonical form. Every accepted spelling of one cell — short
// architecture names, whitespace in the policy spec, the colon form —
// yields the same address, so the campaign store (cmd/taskpointd) never
// computes one cell twice.
func ExampleContentAddress() {
	addr, err := taskpoint.ContentAddress(taskpoint.Request{
		Workload: "cholesky", Arch: "lp", Threads: 8,
		Scale: 0.25, Seed: 42, Policy: "periodic(250)",
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// A different spelling of the same cell.
	same, _ := taskpoint.ContentAddress(taskpoint.Request{
		Workload: "cholesky", Arch: "low-power", Threads: 8,
		Scale: 0.25, Seed: 42, Policy: "periodic: 250",
	})
	// A different cell (another seed).
	other, _ := taskpoint.ContentAddress(taskpoint.Request{
		Workload: "cholesky", Arch: "lp", Threads: 8,
		Scale: 0.25, Seed: 43, Policy: "periodic(250)",
	})

	fmt.Println("address:", addr)
	fmt.Println("same cell, same address:", same == addr)
	fmt.Println("other cell, other address:", other != addr)
	// Output:
	// address: 71aefffe93bbd2fbd278cb4e955ffb21d9fb6168af5487007907d519d380d6a7
	// same cell, same address: true
	// other cell, other address: true
}
