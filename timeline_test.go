package taskpoint_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"taskpoint"
)

// TestTimelineSchemaGenScenario is the committed schema contract for
// `taskpoint -timeline`: run a generated scenario through the engine,
// render the report's timeline, and validate the Chrome trace-event JSON
// shape Perfetto loads — metadata events first with named tracks for both
// the sampled run (pid 1) and the detailed reference (pid 2), then one
// complete event per executed task instance with non-negative timing.
func TestTimelineSchemaGenScenario(t *testing.T) {
	eng := taskpoint.NewEngine(taskpoint.WithWorkers(1))
	rep, err := eng.Run(context.Background(), taskpoint.Request{
		Workload: "gen:forkjoin(tasks=48)",
		Arch:     "hp",
		Threads:  4,
		Scale:    1.0 / 64,
		Seed:     7,
		Policy:   "lazy",
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := taskpoint.WriteTimeline(&buf, rep); err != nil {
		t.Fatal(err)
	}

	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   *int64         `json:"ts"`
			Dur  *int64         `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", tf.DisplayTimeUnit)
	}

	procNames := map[int]string{}
	spansPerPID := map[int]int{}
	inMetadata := true
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			if !inMetadata {
				t.Errorf("event %d: metadata after the first span", i)
			}
			if ev.Name == "process_name" {
				procNames[ev.PID], _ = ev.Args["name"].(string)
			}
		case "X":
			inMetadata = false
			if ev.TS == nil || *ev.TS < 0 {
				t.Errorf("event %d: missing or negative ts", i)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Errorf("event %d: missing or negative dur", i)
			}
			if ev.Name == "" || ev.Cat == "" {
				t.Errorf("event %d: unnamed or uncategorised span: %+v", i, ev)
			}
			if ev.Args["mode"] == nil || ev.Args["instr"] == nil {
				t.Errorf("event %d: span lacks mode/instr args: %v", i, ev.Args)
			}
			spansPerPID[ev.PID]++
		default:
			t.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}

	if procNames[1] != "sampled gen:forkjoin(tasks=48)" {
		t.Errorf("pid 1 = %q, want the sampled-prefixed scenario spec", procNames[1])
	}
	if procNames[2] != "detailed gen:forkjoin(tasks=48)" {
		t.Errorf("pid 2 = %q, want the detailed-prefixed scenario spec", procNames[2])
	}
	// Both runs executed all 48 instances of the scenario.
	if spansPerPID[1] != 48 || spansPerPID[2] != 48 {
		t.Errorf("spans per pid = %v, want 48 on both tracks", spansPerPID)
	}
}
