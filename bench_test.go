// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates its artefact at a reduced
// scale (CI-friendly) and reports the paper's metrics via b.ReportMetric:
// err_pct (execution-time error of sampled vs detailed simulation) and
// speedup_x (wall-clock speedup of sampling). The full-resolution artefacts
// are produced by cmd/experiments; see EXPERIMENTS.md.
package taskpoint_test

import (
	"testing"

	"taskpoint/internal/bench"
	"taskpoint/internal/core"
	"taskpoint/internal/engine"
	"taskpoint/internal/results"
	"taskpoint/internal/stats"
)

// benchScale keeps every artefact benchmark tractable: instance counts are
// Table I / 32 (with a floor of 64), preserving the task-type structure.
const benchScale = 1.0 / 32

// benchBaselines shares generated programs and detailed reference
// simulations across every artefact benchmark (and across b.N
// iterations), so each expensive cycle-level baseline is simulated once
// per process instead of once per figure.
var benchBaselines = engine.NewBaselineCache()

// benchRunner builds a runner backed by the shared baseline cache.
func benchRunner() *results.Runner {
	return results.NewCachedRunner(benchScale, 42, 2, benchBaselines)
}

// figureMetrics folds rows into the two headline metrics.
func figureMetrics(b *testing.B, rows []results.SampledRow) {
	b.Helper()
	var errs, speedups []float64
	for _, r := range rows {
		errs = append(errs, r.ErrPct)
		speedups = append(speedups, r.SpeedupWall)
	}
	b.ReportMetric(stats.Mean(errs), "err_pct")
	b.ReportMetric(stats.Mean(speedups), "speedup_x")
}

// BenchmarkTable1Inventory regenerates Table I: the benchmark inventory
// with measured detailed-simulation times at 1 and 64 threads.
func BenchmarkTable1Inventory(b *testing.B) {
	b.ReportAllocs()
	r := benchRunner()
	for i := 0; i < b.N; i++ {
		rows, err := r.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 19 {
			b.Fatalf("Table I has %d rows, want 19", len(rows))
		}
	}
}

// BenchmarkFig1NativeVariation regenerates Figure 1: per-type IPC variation
// under the native-machine noise model at 8 threads.
func BenchmarkFig1NativeVariation(b *testing.B) {
	b.ReportAllocs()
	r := benchRunner()
	var within int
	for i := 0; i < b.N; i++ {
		rows, err := r.Variation(results.Native, 8)
		if err != nil {
			b.Fatal(err)
		}
		within = 0
		for _, row := range rows {
			if row.Within5 {
				within++
			}
		}
	}
	b.ReportMetric(float64(within), "within5_of_19")
}

// BenchmarkFig5SimulatedVariation regenerates Figure 5: per-type IPC
// variation in detailed simulation of the high-performance machine.
func BenchmarkFig5SimulatedVariation(b *testing.B) {
	b.ReportAllocs()
	r := benchRunner()
	var within int
	for i := 0; i < b.N; i++ {
		rows, err := r.Variation(results.HighPerf, 8)
		if err != nil {
			b.Fatal(err)
		}
		within = 0
		for _, row := range rows {
			if row.Within5 {
				within++
			}
		}
	}
	b.ReportMetric(float64(within), "within5_of_19")
}

// BenchmarkFig6aWarmupSweep regenerates Figure 6a: error and speedup as the
// warm-up size W varies (H=10, lazy), on the sensitivity benchmarks.
func BenchmarkFig6aWarmupSweep(b *testing.B) {
	b.ReportAllocs()
	r := benchRunner()
	var pts []results.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = r.SweepW([]int{0, 2, 6}, []int{16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].AvgErrPct, "err_pct_W0")
	b.ReportMetric(pts[1].AvgErrPct, "err_pct_W2")
}

// BenchmarkFig6bHistorySweep regenerates Figure 6b: error and speedup as
// the history size H varies (W=2, lazy).
func BenchmarkFig6bHistorySweep(b *testing.B) {
	b.ReportAllocs()
	r := benchRunner()
	var pts []results.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = r.SweepH([]int{1, 4, 10}, []int{16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[1].AvgErrPct, "err_pct_H4")
	b.ReportMetric(pts[1].AvgSpeedup, "speedup_x_H4")
}

// BenchmarkFig6cPeriodSweep regenerates Figure 6c: error and speedup as the
// sampling period P varies (W=2, H=4, periodic).
func BenchmarkFig6cPeriodSweep(b *testing.B) {
	b.ReportAllocs()
	r := benchRunner()
	var pts []results.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = r.SweepP([]int{10, 100, 1000}, []int{16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].AvgSpeedup, "speedup_x_P10")
	b.ReportMetric(pts[2].AvgSpeedup, "speedup_x_P1000")
}

// BenchmarkFig7PeriodicHighPerf regenerates Figure 7: periodic sampling
// (P=250) on the high-performance architecture.
func BenchmarkFig7PeriodicHighPerf(b *testing.B) {
	b.ReportAllocs()
	r := benchRunner()
	var rows []results.SampledRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Figure(results.HighPerf, []int{8}, core.DefaultParams(), core.Periodic{P: 250}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	figureMetrics(b, rows)
}

// BenchmarkFig8PeriodicLowPower regenerates Figure 8: periodic sampling
// (P=250) on the low-power architecture.
func BenchmarkFig8PeriodicLowPower(b *testing.B) {
	b.ReportAllocs()
	r := benchRunner()
	var rows []results.SampledRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Figure(results.LowPower, []int{4}, core.DefaultParams(), core.Periodic{P: 250}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	figureMetrics(b, rows)
}

// BenchmarkFig9LazyHighPerf regenerates Figure 9: lazy sampling on the
// high-performance architecture — the paper's headline configuration.
func BenchmarkFig9LazyHighPerf(b *testing.B) {
	b.ReportAllocs()
	r := benchRunner()
	var rows []results.SampledRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Figure(results.HighPerf, []int{8}, core.DefaultParams(), core.Lazy{}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	figureMetrics(b, rows)
}

// BenchmarkFig10LazyLowPower regenerates Figure 10: lazy sampling on the
// low-power architecture.
func BenchmarkFig10LazyLowPower(b *testing.B) {
	b.ReportAllocs()
	r := benchRunner()
	var rows []results.SampledRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Figure(results.LowPower, []int{4}, core.DefaultParams(), core.Lazy{}, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	figureMetrics(b, rows)
}

// BenchmarkDetailedSimThroughput measures raw detailed-mode simulation
// speed (instructions per second) — the denominator of every speedup.
func BenchmarkDetailedSimThroughput(b *testing.B) {
	b.ReportAllocs()
	spec, err := bench.ByName("2d-convolution")
	if err != nil {
		b.Fatal(err)
	}
	prog := spec.MustBuild(benchScale, 42)
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		r := results.NewRunner(benchScale, uint64(i)+1, 1)
		res, err := r.Detailed("2d-convolution", results.HighPerf, 8)
		if err != nil {
			b.Fatal(err)
		}
		instr = res.TotalInstructions
	}
	_ = prog
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds()*float64(b.N), "instr/s")
}
